/// \file factor_scaling.cpp
/// \brief Extra experiment: modeled strong scaling of the distributed
/// numeric factorization (the SuperLU_DIST substrate the paper's solves
/// run inside; its artifact notes most wall time goes to factorization).
/// Right-looking fan-out on Px x Py grids of Cori Haswell cores.

#include "bench/bench_util.hpp"
#include "dist/factor_dist.hpp"
#include "ordering/etree.hpp"
#include "symbolic/colcounts.hpp"

using namespace sptrsv;
using namespace sptrsv::bench;

int main() {
  const MachineModel machine = MachineModel::cori_haswell();
  // The solve benches use medium matrices; the factorization does O(n^1.5+)
  // work, so scale down one notch unless the full sweep is requested.
  const MatrixScale scale = full_sweep() ? bench_scale() : MatrixScale::kSmall;
  std::printf("# Distributed supernodal LU factorization, %s\n", machine.name.c_str());
  for (const PaperMatrix which :
       {PaperMatrix::kS2D9pt2048, PaperMatrix::kNlpkkt80}) {
    const CsrMatrix a = make_paper_matrix(which, scale);
    NdOptions nd_opt;
    nd_opt.levels = 4;
    const NdOrdering nd = nested_dissection(a, nd_opt);
    const CsrMatrix pa = a.permuted_symmetric(nd.perm);
    const auto parent = elimination_tree(pa);
    const auto counts = cholesky_col_counts(pa, parent);
    SupernodeOptions sn_opt;
    for (Idx id = 0; id < nd.tree.num_nodes(); ++id) {
      sn_opt.forced_breaks.push_back(nd.tree.node(id).col_begin);
      sn_opt.forced_breaks.push_back(nd.tree.node(id).col_end);
    }
    const SupernodePartition part = find_supernodes(parent, counts, sn_opt);

    std::printf("\n## %s (n=%d)\n", paper_matrix_name(which).c_str(), a.rows());
    Table t({"grid", "ranks", "modeled time", "speedup", "mean FP", "mean comm",
             "messages"});
    double t1 = 0;
    for (const auto& [px, py] : {std::pair{1, 1}, std::pair{2, 2}, std::pair{4, 4},
                                 std::pair{8, 8}, std::pair{16, 16}}) {
      DistFactorStats stats;
      factor_supernodal_distributed(pa, block_symbolic(pa, part), {px, py}, machine,
                                    &stats);
      if (px == 1) t1 = stats.makespan;
      char sp[32];
      std::snprintf(sp, sizeof(sp), "%.2fx", t1 / stats.makespan);
      t.add_row({std::to_string(px) + "x" + std::to_string(py),
                 std::to_string(px * py), fmt_time(stats.makespan), sp,
                 fmt_time(stats.mean_fp), fmt_time(stats.mean_comm),
                 std::to_string(stats.total_messages)});
      bench_report(paper_matrix_name(which) + "_" + std::to_string(px) + "x" +
                       std::to_string(py),
                   {{"makespan", stats.makespan},
                    {"mean_fp", stats.mean_fp},
                    {"mean_comm", stats.mean_comm},
                    {"messages", static_cast<double>(stats.total_messages)}});
    }
    t.print();
  }
  return 0;
}
