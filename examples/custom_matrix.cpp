/// \file custom_matrix.cpp
/// \brief Solve a user-provided Matrix-Market system:
///
///   ./custom_matrix path/to/matrix.mtx [pz]
///
/// Reads a `coordinate real general|symmetric` file, symmetrizes the
/// pattern, makes the values safely factorable if needed (the library's
/// unpivoted LU wants a nonzero diagonal), factors, and solves against a
/// b = A*ones right-hand side so the expected solution is all-ones.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/mmio.hpp"

using namespace sptrsv;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s matrix.mtx [pz]\n", argv[0]);
    return 2;
  }
  const int pz = argc > 2 ? std::atoi(argv[2]) : 4;
  int levels = 0;
  while ((1 << levels) < pz) ++levels;
  if ((1 << levels) != pz) {
    std::fprintf(stderr, "pz must be a power of two\n");
    return 2;
  }

  CsrMatrix a = read_matrix_market_file(argv[1]);
  std::printf("read %s: %d x %d, %lld nonzeros\n", argv[1], a.rows(), a.cols(),
              static_cast<long long>(a.nnz()));
  if (a.rows() != a.cols()) {
    std::fprintf(stderr, "matrix must be square\n");
    return 2;
  }
  if (!a.has_symmetric_pattern()) {
    std::printf("symmetrizing the nonzero pattern (structural zeros added)\n");
    a = a.symmetrized_pattern();
  }
  if (!a.has_full_diagonal()) {
    std::fprintf(stderr, "matrix needs a structurally full diagonal\n");
    return 2;
  }

  const FactoredSystem fs = analyze_and_factor(a, levels);

  // b = A * ones, so x should be all ones.
  std::vector<Real> ones(static_cast<size_t>(a.rows()), 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()));
  a.matvec(ones, b);

  SolveConfig cfg;
  cfg.shape = {2, 2, pz};
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, MachineModel::perlmutter());

  Real worst = 0;
  for (const Real v : out.x) worst = std::max(worst, std::abs(v - 1.0));
  std::printf("solved on 2x2x%d; max |x_i - 1| = %.2e, modeled time %.3e s\n", pz,
              worst, out.makespan);
  return worst < 1e-6 ? 0 : 1;
}
