/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the library: build a sparse system,
/// factor it, run the proposed 3D SpTRSV on a modeled CPU cluster, and
/// verify the solution.
///
///   ./quickstart [grid_side]
///
/// This is the five-call tour of the public API:
///   1. make_grid2d / make_paper_matrix / read_matrix_market_file — get A
///   2. analyze_and_factor — ND ordering + symbolic + numeric LU
///   3. SolveConfig — pick the layout (Px x Py x Pz) and algorithm
///   4. solve_system_3d — distributed triangular solves
///   5. relative_residual — check the answer

#include <cstdio>
#include <random>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/generators.hpp"

using namespace sptrsv;

int main(int argc, char** argv) {
  const Idx side = argc > 1 ? static_cast<Idx>(std::atoi(argv[1])) : 96;
  std::printf("Building a %d x %d 9-point Poisson system (n = %d)...\n", side, side,
              side * side);
  const CsrMatrix a = make_grid2d(side, side, Stencil2d::kNinePoint);

  // Factor once; the tracked ND tree depth bounds the largest usable Pz
  // (here 2^4 = 16 grids).
  std::printf("Factoring (nested dissection + supernodal LU)...\n");
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/4);
  std::printf("  supernodes: %d, factor nnz (blocked): %lld\n",
              fs.lu.num_supernodes(), static_cast<long long>(fs.lu.sym.blocked_lu_nnz()));

  // A right-hand side.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()));
  for (auto& v : b) v = uni(rng);

  // Solve on a modeled 2 x 2 x 4 process grid of Cori Haswell cores with
  // the paper's proposed one-synchronization 3D algorithm.
  SolveConfig cfg;
  cfg.shape = {2, 2, 4};
  cfg.algorithm = Algorithm3d::kProposed;
  cfg.tree = TreeKind::kBinary;
  std::printf("Solving on a %dx%dx%d grid (%d ranks)...\n", cfg.shape.px, cfg.shape.py,
              cfg.shape.pz, cfg.shape.size());
  const DistSolveOutcome out = solve_system_3d(fs, b, cfg, MachineModel::cori_haswell());

  const Real resid = relative_residual(a, out.x, b);
  std::printf("  relative residual: %.2e\n", resid);
  std::printf("  modeled solve makespan: %.3e s\n", out.makespan);
  std::printf("  mean rank time: FP %.3e s, intra-grid comm %.3e s, inter-grid "
              "comm %.3e s\n",
              out.mean(&RankPhaseTimes::l_fp) + out.mean(&RankPhaseTimes::u_fp),
              out.mean(&RankPhaseTimes::l_xy) + out.mean(&RankPhaseTimes::u_xy),
              out.mean(&RankPhaseTimes::z_time));
  return resid < 1e-9 ? 0 : 1;
}
