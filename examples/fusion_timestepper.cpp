/// \file fusion_timestepper.cpp
/// \brief Domain scenario: an implicit time-stepper for an anisotropic 2D
/// transport problem (the role the fusion matrix s1_mat_0_253872 plays in
/// the paper). The operator is factored once and the triangular solves are
/// applied every step — exactly the many-repeated-SpTRSV workload that
/// motivates the paper — so the solve layout, not the factorization,
/// determines throughput. The example compares layouts and reports
/// steps/second under the model.

#include <cstdio>
#include <vector>

#include "core/sptrsv3d.hpp"
#include "factor/sptrsv_seq.hpp"
#include "sparse/paper_matrices.hpp"

using namespace sptrsv;

int main() {
  // Field-aligned anisotropic operator (fusion-like).
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS1Mat0253872, MatrixScale::kSmall);
  std::printf("Anisotropic transport system: n = %d, nnz = %lld\n", a.rows(),
              static_cast<long long>(a.nnz()));
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/4);

  // Initial condition: a hot spot in the middle.
  std::vector<Real> u(static_cast<size_t>(a.rows()), 0.0);
  u[static_cast<size_t>(a.rows() / 2)] = 1.0;

  const MachineModel machine = MachineModel::cori_haswell();
  const int steps = 5;
  std::printf("%-10s  %-12s  %-12s  %-10s\n", "layout", "per-step (s)", "steps/s",
              "residual");
  for (const Grid3dShape shape : {Grid3dShape{2, 2, 1}, Grid3dShape{2, 2, 4},
                                  Grid3dShape{2, 2, 16}}) {
    SolveConfig cfg;
    cfg.shape = shape;
    cfg.algorithm = Algorithm3d::kProposed;
    std::vector<Real> state = u;
    double per_step = 0;
    Real resid = 0;
    for (int s = 0; s < steps; ++s) {
      // Backward-Euler step: A u_{t+1} = u_t (diffusion absorbed in A).
      const DistSolveOutcome out = solve_system_3d(fs, state, cfg, machine);
      per_step += out.makespan / steps;
      resid = relative_residual(a, out.x, state);
      state = out.x;
    }
    std::printf("%dx%dx%-4d  %-12.3e  %-12.1f  %-10.2e\n", shape.px, shape.py,
                shape.pz, per_step, 1.0 / per_step, resid);
  }
  std::printf("\nThe factorization is reused across all steps; only the solve\n"
              "layout changes throughput — the paper's core motivation.\n");
  return 0;
}
