/// \file sptrsv_cli.cpp
/// \brief Full command-line driver: pick a matrix, layout, algorithm and
/// machine; solve; report residual, timings and message statistics.
///
///   sptrsv_cli [--matrix NAME|file.mtx] [--scale tiny|small|medium]
///              [--shape PXxPYxPZ] [--alg new|baseline] [--tree binary|flat]
///              [--machine cori|perlmutter|crusher] [--nrhs N]
///              [--backend cpu|gpu] [--refine] [--csv] [--trace FILE]
///              [--metrics FILE] [--crash R@T] [--mtbf SECONDS]
///              [--sdc RATE] [--abft] [--sdc-repair] [--spares N] [--degrade]
///              [--return R@T] [--repair-mtbf S] [--fanout K] [--rebalance]
///              [--straggler-lag S]
///
/// Examples:
///   sptrsv_cli --matrix s2D9pt2048 --shape 4x4x8 --alg new
///   sptrsv_cli --matrix my.mtx --shape 1x1x4 --machine perlmutter --backend gpu
///   sptrsv_cli --matrix nlpkkt80 --scale medium --shape 2x2x16 --refine
///   sptrsv_cli --matrix s2D9pt2048 --shape 2x2x2 --crash 3@1e-4
///   sptrsv_cli --matrix s2D9pt2048 --shape 2x2x2 --sdc 2e3 --abft
///   sptrsv_cli --shape 2x2x2 --spares 0 --degrade --crash 3@1e-4 \
///              --return 3@5e-4 --fanout 2
///
/// Exit codes: 0 success, 1 numeric/IO failure, 2 usage, 3 structured fault
/// (the FaultReport diagnostics — kind, rank, peer, tag, phase — go to
/// stderr on every path), 4 unrecoverable silent data corruption (the
/// end-of-solve residual gate tripped and no repair path converged).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/refinement.hpp"
#include "core/sptrsv3d.hpp"
#include "trace/trace.hpp"
#include "factor/sptrsv_seq.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/mmio.hpp"
#include "sparse/paper_matrices.hpp"

using namespace sptrsv;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--matrix NAME|file.mtx] [--scale tiny|small|medium]\n"
               "          [--shape PXxPYxPZ] [--alg new|baseline] [--tree "
               "binary|flat]\n"
               "          [--machine cori|perlmutter|crusher] [--nrhs N]\n"
               "          [--backend cpu|gpu] [--refine] [--csv] [--trace FILE]\n"
               "          [--metrics FILE] [--crash R@T]... [--mtbf SECONDS]\n"
               "          [--sdc RATE] [--abft] [--sdc-repair] [--spares N]\n"
               "          [--degrade] [--return R@T]... [--repair-mtbf S]\n"
               "          [--fanout K] [--rebalance] [--straggler-lag S]\n"
               "\n"
               "  --metrics FILE  enable the runtime metrics registry and write the\n"
               "                  schema-versioned JSON report (sptrsv-metrics/1) to\n"
               "                  FILE; a one-line summary prints on normal exit\n"
               "  --sdc RATE      inject silent memory faults (bit flips in live\n"
               "                  solver state) as a Poisson process at RATE per\n"
               "                  virtual second per rank\n"
               "  --abft          verify epoch checksums and recompute corrupted\n"
               "                  words in place (docs/ROBUSTNESS.md, SDC section)\n"
               "  --sdc-repair    if the end-of-solve residual gate trips, degrade\n"
               "                  into iterative refinement instead of failing\n"
               "  --spares N      size of the spare-rank pool crashes draw from\n"
               "                  (default 2)\n"
               "  --degrade       when the spare pool runs dry (or a buddy pair\n"
               "                  dies), shrink the world and redistribute the\n"
               "                  dead rank's partition instead of failing\n"
               "                  (docs/ROBUSTNESS.md, graceful degradation)\n"
               "  --return R@T    a repaired node rejoins as a spare for rank R\n"
               "                  at virtual time T; a degraded world re-expands\n"
               "                  and hands the adopted partition back\n"
               "  --repair-mtbf S draw spare-return times as a Poisson process\n"
               "                  with mean-time-to-repair S virtual seconds\n"
               "  --fanout K      load-aware degradation: split a victim's\n"
               "                  partition across the K least-loaded survivors\n"
               "                  instead of one ring adopter (0 = classic)\n"
               "  --rebalance     straggler watchdog mitigates (repartitions)\n"
               "                  instead of merely diagnosing slow ranks\n"
               "  --straggler-lag S  fault-clock lag growth per epoch that\n"
               "                  classifies a rank as a straggler (0 = off)\n"
               "\n"
               "exit codes: 0 success, 1 numeric/IO failure, 2 usage,\n"
               "            3 structured fault (FaultReport on stderr),\n"
               "            4 unrecoverable silent data corruption\n",
               argv0);
  std::exit(2);
}

/// Writes `text` to `path`; false on any IO failure.
bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

/// One-line metrics digest: total messages/bytes over the four categories,
/// transport retransmits and the slowest rank's accumulated receive wait.
void print_metrics_summary(const MetricsReport& rep) {
  const char* cats[] = {"fp", "xy", "z", "other"};
  double msgs = 0, bytes = 0;
  for (const char* c : cats) {
    msgs += rep.total(std::string("cluster.messages.") + c);
    bytes += rep.total(std::string("cluster.bytes.") + c);
  }
  std::printf("  metrics: messages=%.0f bytes=%.0f retransmits=%.0f "
              "max_wait=%.3e s\n",
              msgs, bytes, rep.total("transport.retransmits"),
              rep.hist_sum_max("cluster.wait_time"));
}

CsrMatrix load_matrix(const std::string& name, MatrixScale scale) {
  if (name.size() > 4 && name.substr(name.size() - 4) == ".mtx") {
    CsrMatrix a = read_matrix_market_file(name);
    return a.has_symmetric_pattern() ? a : a.symmetrized_pattern();
  }
  for (const PaperMatrix m : all_paper_matrices()) {
    if (paper_matrix_name(m) == name) return make_paper_matrix(m, scale);
  }
  std::fprintf(stderr, "unknown matrix '%s' (not a .mtx path or a paper name)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string matrix = "s2D9pt2048";
  MatrixScale scale = MatrixScale::kSmall;
  Grid3dShape shape{2, 2, 4};
  Algorithm3d alg = Algorithm3d::kProposed;
  TreeKind tree = TreeKind::kBinary;
  std::string machine_name = "cori";
  Idx nrhs = 1;
  bool gpu = false, refine = false, csv = false;
  std::string trace_path;
  std::string metrics_path;
  std::vector<PerturbationModel::Crash> crashes;
  std::vector<PerturbationModel::NodeReturn> returns;
  double mtbf = 0.0;
  double repair_mtbf = 0.0;
  double sdc_rate = 0.0;
  bool abft = false, sdc_repair = false;
  bool degrade = false, rebalance = false;
  int spares = -1;
  int fanout = 0;
  double straggler_lag = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--matrix") {
      matrix = next();
    } else if (a == "--scale") {
      const std::string s = next();
      scale = s == "tiny" ? MatrixScale::kTiny
              : s == "medium" ? MatrixScale::kMedium
                              : MatrixScale::kSmall;
    } else if (a == "--shape") {
      const std::string s = next();
      if (std::sscanf(s.c_str(), "%dx%dx%d", &shape.px, &shape.py, &shape.pz) != 3) {
        usage(argv[0]);
      }
    } else if (a == "--alg") {
      alg = next() == "baseline" ? Algorithm3d::kBaseline : Algorithm3d::kProposed;
    } else if (a == "--tree") {
      tree = next() == "flat" ? TreeKind::kFlat : TreeKind::kBinary;
    } else if (a == "--machine") {
      machine_name = next();
    } else if (a == "--nrhs") {
      nrhs = static_cast<Idx>(std::atoi(next().c_str()));
    } else if (a == "--backend") {
      gpu = (next() == "gpu");
    } else if (a == "--refine") {
      refine = true;
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--metrics") {
      metrics_path = next();
    } else if (a == "--crash") {
      PerturbationModel::Crash c;
      if (std::sscanf(next().c_str(), "%d@%lf", &c.rank, &c.vt) != 2) {
        usage(argv[0]);
      }
      crashes.push_back(c);
    } else if (a == "--mtbf") {
      mtbf = std::atof(next().c_str());
    } else if (a == "--sdc") {
      sdc_rate = std::atof(next().c_str());
    } else if (a == "--abft") {
      abft = true;
    } else if (a == "--sdc-repair") {
      sdc_repair = true;
    } else if (a == "--spares") {
      spares = std::atoi(next().c_str());
    } else if (a == "--degrade") {
      degrade = true;
    } else if (a == "--return") {
      PerturbationModel::NodeReturn nr;
      if (std::sscanf(next().c_str(), "%d@%lf", &nr.rank, &nr.vt) != 2) {
        usage(argv[0]);
      }
      returns.push_back(nr);
    } else if (a == "--repair-mtbf") {
      repair_mtbf = std::atof(next().c_str());
    } else if (a == "--fanout") {
      fanout = std::atoi(next().c_str());
    } else if (a == "--rebalance") {
      rebalance = true;
    } else if (a == "--straggler-lag") {
      straggler_lag = std::atof(next().c_str());
    } else {
      usage(argv[0]);
    }
  }

  MachineModel machine = machine_name == "perlmutter" ? MachineModel::perlmutter()
                         : machine_name == "crusher"  ? MachineModel::crusher()
                                                      : MachineModel::cori_haswell();
  machine.perturb.crashes = crashes;
  machine.perturb.crash_mtbf = mtbf;
  machine.perturb.returns = returns;
  machine.perturb.repair_mtbf = repair_mtbf;
  machine.perturb.sdc_rate = sdc_rate;
  if (spares >= 0) machine.recovery.spare_ranks = spares;
  machine.recovery.rebalance_fanout = fanout;
  machine.recovery.straggler_lag = straggler_lag;

  try {
  const CsrMatrix a = load_matrix(matrix, scale);
  int levels = 0;
  while ((1 << levels) < shape.pz) ++levels;
  if (!csv) {
    std::printf("matrix %s: n=%d nnz=%lld; factoring with %d tracked ND levels...\n",
                matrix.c_str(), a.rows(), static_cast<long long>(a.nnz()), levels);
  }
  const FactoredSystem fs = analyze_and_factor(a, levels);

  std::vector<Real> b(static_cast<size_t>(a.rows()) * nrhs);
  for (size_t i = 0; i < b.size(); ++i) b[i] = 1.0 + 1e-3 * static_cast<Real>(i % 131);

  if (gpu) {
    GpuSolveConfig cfg;
    cfg.shape = shape;
    cfg.nrhs = nrhs;
    cfg.backend = GpuBackend::kGpu;
    cfg.trace = !trace_path.empty();
    cfg.metrics = !metrics_path.empty();
    cfg.abft = abft;
    const GpuSolveTimes t = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
    if (!trace_path.empty() && !t.trace->write_chrome_json_file(trace_path)) {
      std::fprintf(stderr, "failed to write trace %s\n", trace_path.c_str());
      return 1;
    }
    if (cfg.metrics && !write_text_file(metrics_path, t.metrics->to_json())) {
      std::fprintf(stderr, "failed to write metrics %s\n", metrics_path.c_str());
      return 1;
    }
    if (csv) {
      std::printf("%s,%dx%dx%d,gpu,%s,%d,%.6e,%.6e,%.6e,%.6e\n", matrix.c_str(),
                  shape.px, shape.py, shape.pz, machine.name.c_str(),
                  static_cast<int>(nrhs), t.total, t.l_solve, t.u_solve, t.z_comm);
    } else {
      std::printf("GPU model on %s: total %.3e s (L %.3e, U %.3e, Z %.3e)\n",
                  machine.name.c_str(), t.total, t.l_solve, t.u_solve, t.z_comm);
    }
    if (cfg.metrics) {
      std::printf("  metrics: puts=%.0f bytes=%.0f tasks=%.0f\n",
                  t.metrics->total("gpu.puts"),
                  t.metrics->total("gpu.put_bytes.xy") +
                      t.metrics->total("gpu.put_bytes.z"),
                  t.metrics->total("gpu.tasks"));
    }
    if (abft || machine.perturb.sdc_active()) {
      std::printf("  sdc: injected=%lld detected=%lld corrected=%lld "
                  "refine_iters=%lld (abft overhead %.3e s)\n",
                  static_cast<long long>(t.sdc.injected),
                  static_cast<long long>(t.sdc.detected),
                  static_cast<long long>(t.sdc.corrected),
                  static_cast<long long>(t.sdc.refine_iters), t.abft_overhead);
    }
    return 0;
  }

  SolveConfig cfg;
  cfg.shape = shape;
  cfg.algorithm = alg;
  cfg.tree = tree;
  cfg.nrhs = nrhs;
  cfg.run.trace = !trace_path.empty() && !refine;
  cfg.run.metrics = !metrics_path.empty() && !refine;
  cfg.run.abft = abft;
  cfg.run.sdc_repair = sdc_repair;
  cfg.run.degrade = degrade;
  cfg.run.rebalance = rebalance;

  if (refine) {
    if (!metrics_path.empty()) {
      std::fprintf(stderr,
                   "note: --metrics is ignored with --refine (the refinement "
                   "result carries no per-solve run stats)\n");
    }
    const RefinementResult r = iterative_refinement(a, fs, b, cfg, machine);
    if (csv) {
      std::printf("%s,%dx%dx%d,refine,%s,%d,%.6e,%d,%.3e\n", matrix.c_str(), shape.px,
                  shape.py, shape.pz, machine.name.c_str(), static_cast<int>(nrhs),
                  r.modeled_solve_time, static_cast<int>(r.iterations()),
                  r.residual_history.back());
    } else {
      std::printf("refined in %d iterations to residual %.2e; modeled solve time "
                  "%.3e s\n",
                  static_cast<int>(r.iterations()), r.residual_history.back(),
                  r.modeled_solve_time);
    }
    return r.converged ? 0 : 1;
  }

  // With SDC injection or ABFT engaged, run the residual-verified wrapper:
  // it prices the end-of-solve check on the fault ledger and either throws
  // kSilentCorruption (exit 4) or repairs via refinement (--sdc-repair).
  const bool sdc_engaged = abft || sdc_repair || machine.perturb.sdc_active();
  DistSolveOutcome out;
  Real resid = 0;
  bool repaired = false;
  Idx repair_iters = 0;
  if (sdc_engaged) {
    VerifiedSolveOutcome v = solve_system_3d_verified(a, fs, b, cfg, machine);
    resid = v.residual;
    repaired = v.repaired;
    repair_iters = v.repair_iterations;
    out = std::move(v.solve);
  } else {
    out = solve_system_3d(fs, b, cfg, machine);
    resid = relative_residual(a, out.x, b, nrhs);
  }
  if (cfg.run.trace &&
      !out.run_stats.trace->write_chrome_json_file(trace_path)) {
    std::fprintf(stderr, "failed to write trace %s\n", trace_path.c_str());
    return 1;
  }
  if (cfg.run.metrics &&
      !write_text_file(metrics_path, out.run_stats.metrics->to_json())) {
    std::fprintf(stderr, "failed to write metrics %s\n", metrics_path.c_str());
    return 1;
  }
  if (csv) {
    std::printf("%s,%dx%dx%d,%s,%s,%d,%.6e,%.3e\n", matrix.c_str(), shape.px, shape.py,
                shape.pz, alg == Algorithm3d::kProposed ? "new" : "baseline",
                machine.name.c_str(), static_cast<int>(nrhs), out.makespan, resid);
  } else {
    std::printf("%s algorithm on %s (%s trees): modeled %.3e s, residual %.2e\n",
                alg == Algorithm3d::kProposed ? "proposed" : "baseline",
                machine.name.c_str(), tree == TreeKind::kBinary ? "binary" : "flat",
                out.makespan, resid);
    std::printf("  breakdown (mean/rank): FP %.3e, XY %.3e, Z %.3e\n",
                out.mean(&RankPhaseTimes::l_fp) + out.mean(&RankPhaseTimes::u_fp),
                out.mean(&RankPhaseTimes::l_xy) + out.mean(&RankPhaseTimes::u_xy),
                out.mean(&RankPhaseTimes::l_z) + out.mean(&RankPhaseTimes::z_time) +
                    out.mean(&RankPhaseTimes::u_z));
  }
  if (cfg.run.metrics) print_metrics_summary(*out.run_stats.metrics);
  if (sdc_engaged) {
    const SdcStats s = out.run_stats.sdc_stats();
    std::printf("  sdc: injected=%lld detected=%lld corrected=%lld "
                "refine_iters=%lld%s\n"
                "       by-target (injected/corrected): x=%lld/%lld "
                "l=%lld/%lld partial=%lld/%lld\n",
                static_cast<long long>(s.injected),
                static_cast<long long>(s.detected),
                static_cast<long long>(s.corrected),
                static_cast<long long>(repair_iters),
                repaired ? " (repaired by refinement)" : "",
                static_cast<long long>(s.injected_by[0]),
                static_cast<long long>(s.corrected_by[0]),
                static_cast<long long>(s.injected_by[1]),
                static_cast<long long>(s.corrected_by[1]),
                static_cast<long long>(s.injected_by[2]),
                static_cast<long long>(s.corrected_by[2]));
  }
  if (machine.perturb.crash_active()) {
    const RecoveryStats rec = out.run_stats.recovery_stats();
    std::printf(
        "  recovery: crashes=%lld spares=%lld checkpoints=%lld (%lld B) "
        "restores=%lld\n"
        "            detect %.3e s, repair %.3e s, restore %.3e s, replay "
        "%.3e s; fault makespan %.3e s (clean %.3e s)\n",
        static_cast<long long>(rec.crashes), static_cast<long long>(rec.spares_used),
        static_cast<long long>(rec.checkpoints),
        static_cast<long long>(rec.checkpoint_bytes),
        static_cast<long long>(rec.restores), rec.detect_time, rec.repair_time,
        rec.restore_time, rec.replay_time, out.run_stats.fault_makespan(),
        out.run_stats.makespan());
    if (rec.image_rejects > 0) {
      std::printf("            image_rejects=%lld (corrupt checkpoints "
                  "escalated to replay-from-start)\n",
                  static_cast<long long>(rec.image_rejects));
    }
    const DegradationStats deg = out.run_stats.degradation_stats();
    if (deg.any()) {
      std::printf(
          "  degrade: events=%lld ranks_lost=%lld adopted=%lld "
          "redistributed=%lld B\n"
          "           agree %.3e s, shrink %.3e s, redistribute %.3e s, "
          "replay %.3e s, overload %.3e s\n",
          static_cast<long long>(deg.degrades),
          static_cast<long long>(deg.ranks_lost),
          static_cast<long long>(deg.partitions_adopted),
          static_cast<long long>(deg.redistributed_bytes), deg.agree_time,
          deg.shrink_time, deg.redistribute_time, deg.replay_time,
          deg.overload_time);
      // Post-shrink load picture: which survivors carry how many partitions'
      // worth of work (x1.00 = their own share only).
      for (size_t r = 0; r < out.run_stats.ranks.size(); ++r) {
        const double m = out.run_stats.ranks[r].degradation.overload_mult;
        if (m > 1.0) {
          std::printf("           rank %zu overload x%.2f\n", r, m);
        }
      }
    }
  }
  const ElasticityStats el = out.run_stats.elasticity_stats();
  if (el.any()) {
    if (el.returns > 0) {
      std::printf(
          "  elastic: returns=%lld expansions=%lld transfers=%lld (%lld B)\n"
          "           agree %.3e s, expand %.3e s, transfer %.3e s, replay "
          "%.3e s\n",
          static_cast<long long>(el.returns),
          static_cast<long long>(el.expansions),
          static_cast<long long>(el.transfers),
          static_cast<long long>(el.transfer_bytes), el.agree_time,
          el.expand_time, el.transfer_time, el.replay_time);
    }
    if (el.stragglers > 0) {
      std::printf("  straggler: events=%lld rebalances=%lld (%.3e s lag)\n",
                  static_cast<long long>(el.stragglers),
                  static_cast<long long>(el.rebalances), el.straggler_time);
    }
  }
  // A refinement repair converges to the ABFT residual gate, not to working
  // accuracy — meeting the gate is the documented success criterion there.
  if (repaired) return resid <= machine.abft.residual_tol ? 0 : 1;
  return resid < 1e-9 ? 0 : 1;
  } catch (const FaultError& fe) {
    // Structured fault diagnostics — kind, rank, peer, tag, retries, vt and
    // the solver phase the report unwound through — on every path, with one
    // consistent exit code.
    std::fprintf(stderr, "%s\n", fe.report.to_string().c_str());
    return fe.report.kind == FaultKind::kSilentCorruption ? 4 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
