/// \file manyrhs_preconditioner.cpp
/// \brief Domain scenario: applying an LU preconditioner to a block of 50
/// right-hand sides (block-Krylov / multi-source setting), comparing the
/// modeled CPU and GPU backends on 1 x 1 x Pz layouts — the Fig 9/10
/// workload as a user-facing application.

#include <cstdio>
#include <random>
#include <vector>

#include "factor/sptrsv_seq.hpp"
#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/paper_matrices.hpp"

using namespace sptrsv;

int main() {
  const Idx nrhs = 50;
  const CsrMatrix a = make_paper_matrix(PaperMatrix::kS2D9pt2048, MatrixScale::kSmall);
  std::printf("Preconditioner application: n = %d, nrhs = %d\n", a.rows(),
              static_cast<int>(nrhs));
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/5);

  // Numerics: one real multi-RHS solve to confirm correctness.
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<Real> uni(-1.0, 1.0);
  std::vector<Real> b(static_cast<size_t>(a.rows()) * nrhs);
  for (auto& v : b) v = uni(rng);
  const std::vector<Real> x = solve_system_seq(fs, b, nrhs);
  std::printf("reference residual over %d RHSs: %.2e\n\n", static_cast<int>(nrhs),
              relative_residual(a, x, b, nrhs));

  // Throughput: modeled CPU vs GPU application time as Pz grows.
  const MachineModel machine = MachineModel::perlmutter();
  std::printf("%-4s  %-12s  %-12s  %-8s  %-14s\n", "Pz", "cpu (s)", "gpu (s)",
              "speedup", "gpu RHS/sec");
  for (const int pz : {1, 4, 16}) {
    GpuSolveConfig cfg;
    cfg.shape = {1, 1, pz};
    cfg.nrhs = nrhs;
    cfg.backend = GpuBackend::kCpu;
    const auto cpu = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
    cfg.backend = GpuBackend::kGpu;
    const auto gpu = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
    std::printf("%-4d  %-12.3e  %-12.3e  %-8.2f  %-14.0f\n", pz, cpu.total, gpu.total,
                cpu.total / gpu.total, nrhs / gpu.total);
  }
  std::printf("\nGPU solves amortize per-block overhead across the RHS block\n"
              "(GEMV becomes blocked GEMM), the effect behind Fig 9-10.\n");
  return 0;
}
