/// \file gpu_scaling.cpp
/// \brief Domain scenario: how far will my solve scale on a GPU cluster?
/// Sweeps Px x 1 x Pz layouts up to 256 modeled Perlmutter GPUs for a
/// wave-propagation (Maxwell FEM) system and reports where the 2D layout
/// hits the inter-node bandwidth wall while the 3D layout keeps scaling —
/// the headline result of the paper (Fig 11).

#include <algorithm>
#include <cstdio>

#include "gpusim/gpu_sptrsv.hpp"
#include "sparse/paper_matrices.hpp"

using namespace sptrsv;

int main() {
  const CsrMatrix a =
      make_paper_matrix(PaperMatrix::kDielFilterV3real, MatrixScale::kSmall);
  std::printf("Wave-propagation system: n = %d\n", a.rows());
  const FactoredSystem fs = analyze_and_factor(a, /*nd_levels=*/6);
  const MachineModel machine = MachineModel::perlmutter();

  std::printf("\n2D layout (Px x 1 x 1, the NVSHMEM 2D algorithm):\n");
  std::printf("%-8s %-12s %-8s\n", "GPUs", "time (s)", "speedup");
  double t1 = 0;
  for (const int px : {1, 2, 4, 8, 16}) {
    GpuSolveConfig cfg;
    cfg.shape = {px, 1, 1};
    const auto t = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
    if (px == 1) t1 = t.total;
    std::printf("%-8d %-12.3e %.2fx%s\n", px, t.total, t1 / t.total,
                px > machine.gpus_per_node ? "   <- crossed the node boundary" : "");
  }

  std::printf("\n3D layouts (Px x 1 x Pz):\n");
  std::printf("%-8s %-8s %-8s %-12s %-8s\n", "Px", "Pz", "GPUs", "time (s)",
              "speedup");
  double best = 1e300;
  int best_gpus = 0;
  for (const int pz : {4, 16, 64}) {
    for (const int px : {1, 2, 4}) {
      GpuSolveConfig cfg;
      cfg.shape = {px, 1, pz};
      const auto t = simulate_solve_3d_gpu(fs.lu, fs.tree, cfg, machine);
      std::printf("%-8d %-8d %-8d %-12.3e %.2fx\n", px, pz, px * pz, t.total,
                  t1 / t.total);
      if (t.total < best) {
        best = t.total;
        best_gpus = px * pz;
      }
    }
  }
  std::printf("\nBest 3D configuration: %d GPUs, %.2fx over 1 GPU — the 2D\n"
              "layout cannot use more than one node productively.\n",
              best_gpus, t1 / best);
  return 0;
}
